package train

import "hvac/internal/sim"

// Perm is a random-access pseudorandom permutation of [0, n): a 4-round
// Feistel network over the smallest covering power-of-two domain with
// cycle-walking. It lets every rank enumerate the epoch's global shuffle
// without materialising an n-element array — at ImageNet21K scale a
// materialised permutation per epoch would cost ~100 MB per run.
type Perm struct {
	n    int
	bits uint // half-width of the Feistel domain
	mask uint64
	keys [4]uint64
}

// NewPerm derives a permutation of [0, n) from the rng stream.
func NewPerm(rng *sim.RNG, n int) *Perm {
	if n <= 0 {
		panic("train: permutation of empty domain")
	}
	p := &Perm{n: n}
	// Domain 2^(2*bits) >= n.
	p.bits = 1
	for 1<<(2*p.bits) < n {
		p.bits++
	}
	p.mask = 1<<p.bits - 1
	for i := range p.keys {
		p.keys[i] = rng.Uint64()
	}
	return p
}

// N returns the domain size.
func (p *Perm) N() int { return p.n }

func (p *Perm) round(x, key uint64) uint64 {
	x += key
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (p *Perm) encrypt(v uint64) uint64 {
	l := v >> p.bits
	r := v & p.mask
	for _, k := range p.keys {
		l, r = r, l^(p.round(r, k)&p.mask)
	}
	return l<<p.bits | r
}

// decrypt runs the Feistel rounds of encrypt backwards. One encrypt
// round maps (l, r) to (r, l^F(r, k)); given the post-round halves the
// pre-round halves are therefore l = r'^F(l', k), r = l'.
func (p *Perm) decrypt(v uint64) uint64 {
	l := v >> p.bits
	r := v & p.mask
	for i := len(p.keys) - 1; i >= 0; i-- {
		l, r = r^(p.round(l, p.keys[i])&p.mask), l
	}
	return l<<p.bits | r
}

// Index returns the image of i under the permutation. It panics if i is
// outside [0, n).
func (p *Perm) Index(i int) int {
	if i < 0 || i >= p.n {
		panic("train: permutation index out of range")
	}
	v := uint64(i)
	for {
		v = p.encrypt(v)
		if v < uint64(p.n) { // cycle-walk back into the domain
			return int(v)
		}
	}
}

// Invert returns the preimage of y: the unique i in [0, n) with
// Index(i) == y. Index cycle-walks forward through out-of-domain points,
// all of which are >= n, so walking decrypt backwards from y stops at
// exactly the i the forward walk started from. This is what lets a
// server score "when is my key read" in O(1) per key instead of scanning
// the whole epoch. It panics if y is outside [0, n).
func (p *Perm) Invert(y int) int {
	if y < 0 || y >= p.n {
		panic("train: permutation index out of range")
	}
	v := uint64(y)
	for {
		v = p.decrypt(v)
		if v < uint64(p.n) {
			return int(v)
		}
	}
}
