package train

import (
	"testing"
	"testing/quick"

	"hvac/internal/sim"
)

func TestPermIsBijection(t *testing.T) {
	f := func(seed uint64, size uint16) bool {
		n := int(size%5000) + 1
		p := NewPerm(sim.NewRNG(seed), n)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := p.Index(i)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPermDeterministic(t *testing.T) {
	a := NewPerm(sim.NewRNG(9), 1000)
	b := NewPerm(sim.NewRNG(9), 1000)
	for i := 0; i < 1000; i++ {
		if a.Index(i) != b.Index(i) {
			t.Fatal("same-seed permutations diverge")
		}
	}
	c := NewPerm(sim.NewRNG(10), 1000)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Index(i) == c.Index(i) {
			same++
		}
	}
	if same > 30 {
		t.Fatalf("different seeds agree on %d/1000 points", same)
	}
}

func TestPermShuffles(t *testing.T) {
	// The permutation must not be close to identity.
	p := NewPerm(sim.NewRNG(3), 10000)
	fixed := 0
	for i := 0; i < 10000; i++ {
		if p.Index(i) == i {
			fixed++
		}
	}
	if fixed > 30 { // expectation is ~1 fixed point
		t.Fatalf("%d fixed points", fixed)
	}
}

func TestPermTinyDomains(t *testing.T) {
	for n := 1; n <= 5; n++ {
		p := NewPerm(sim.NewRNG(uint64(n)), n)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			seen[p.Index(i)] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("n=%d: %d unmapped", n, i)
			}
		}
	}
}

func TestPermOutOfRangePanics(t *testing.T) {
	p := NewPerm(sim.NewRNG(1), 10)
	for _, bad := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%d) did not panic", bad)
				}
			}()
			p.Index(bad)
		}()
	}
}

func BenchmarkPermIndex(b *testing.B) {
	p := NewPerm(sim.NewRNG(1), 11_797_632)
	for i := 0; i < b.N; i++ {
		p.Index(i % 11_797_632)
	}
}
