package train

import (
	"testing"

	"hvac/internal/core"
	"hvac/internal/sim"
	"hvac/internal/summit"
)

// deterministicRun executes one seeded Summit-scale HVAC training job and
// returns everything observable about it: the training result, the
// aggregate server stats, and the engine's event count (the replay
// fingerprint — two runs are identical exactly when their event counts
// and final outputs agree).
func deterministicRun(t *testing.T) (*Result, core.SimServerStats, uint64) {
	t.Helper()
	cfg := Config{
		Model:        ResNet50(),
		Data:         tinySpec(384, 64<<10),
		Nodes:        16,
		ProcsPerNode: 2,
		BatchSize:    8,
		Epochs:       2,
		Seed:         42,
	}
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
	cl.RegisterJob(cfg.Nodes * cfg.ProcsPerNode)
	job := cl.StartHVAC(summit.HVACOptions{
		InstancesPerNode: 2,
		EvictionSeed:     99,
		// Far smaller than the dataset share per instance, so the random
		// eviction policy runs constantly — the hardest part of the model
		// to keep deterministic.
		CapacityPerInstance: 4 * 64 << 10,
	})
	res, err := Run(eng, cfg, job.FS())
	if err != nil {
		t.Fatal(err)
	}
	return res, job.TotalStats(), eng.Events()
}

// TestSimDeterminismRegression is the regression gate for the guarantee
// the simdeterminism analyzer enforces statically: the same seeded
// Summit-scale configuration must replay to the bit. It runs the model
// twice and demands identical event counts, timings, and server counters.
// Any wall-clock read, global RNG use, or map-iteration-order dependence
// that sneaks into the simulation packages shows up here as a diff.
func TestSimDeterminismRegression(t *testing.T) {
	res1, st1, ev1 := deterministicRun(t)
	res2, st2, ev2 := deterministicRun(t)

	if ev1 != ev2 {
		t.Errorf("event counts differ: %d vs %d", ev1, ev2)
	}
	if res1.TrainTime != res2.TrainTime {
		t.Errorf("train times differ: %v vs %v", res1.TrainTime, res2.TrainTime)
	}
	if res1.IOTime != res2.IOTime {
		t.Errorf("I/O stall times differ: %v vs %v", res1.IOTime, res2.IOTime)
	}
	if res1.ComputeTime != res2.ComputeTime {
		t.Errorf("compute times differ: %v vs %v", res1.ComputeTime, res2.ComputeTime)
	}
	if res1.FilesRead != res2.FilesRead {
		t.Errorf("files read differ: %d vs %d", res1.FilesRead, res2.FilesRead)
	}
	if len(res1.EpochTimes) != len(res2.EpochTimes) {
		t.Fatalf("epoch counts differ: %d vs %d", len(res1.EpochTimes), len(res2.EpochTimes))
	}
	for e := range res1.EpochTimes {
		if res1.EpochTimes[e] != res2.EpochTimes[e] {
			t.Errorf("epoch %d times differ: %v vs %v", e+1, res1.EpochTimes[e], res2.EpochTimes[e])
		}
	}
	if st1 != st2 {
		t.Errorf("server stats differ:\n  run 1: %+v\n  run 2: %+v", st1, st2)
	}

	// The run must actually exercise the stochastic machinery it claims
	// to pin down: cache churn and a non-trivial event volume.
	if st1.Evictions == 0 {
		t.Error("no evictions: the test is not covering the random eviction policy")
	}
	if ev1 == 0 {
		t.Error("no events scheduled")
	}
}
