package sim

// Resource is a first-come-first-served queue with a fixed number of
// identical servers. It models contended hardware: a metadata-server pool,
// an NVMe device's internal parallelism, a CPU worker, a network link.
//
// A Proc occupies one server for an explicit service duration via Use, or
// for a data-dependent duration via UseBytes when the resource was built
// with NewRateResource.
type Resource struct {
	eng     *Engine
	name    string
	servers int
	rate    float64 // bytes per second for UseBytes; 0 if duration-only
	perOp   Duration

	inUse int
	queue []*Proc

	// Stats accumulated over the run.
	completed int64
	busyNS    int64 // total server-occupancy time, summed over servers
	waitNS    int64 // total queueing delay
	lastStart Time
}

// NewResource returns a duration-based resource with the given number of
// servers (must be >= 1).
func NewResource(eng *Engine, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{eng: eng, name: name, servers: servers}
}

// NewRateResource returns a resource whose UseBytes service time is
// perOp + bytes/rate. rate is in bytes per second.
func NewRateResource(eng *Engine, name string, servers int, rate float64, perOp Duration) *Resource {
	r := NewResource(eng, name, servers)
	r.rate = rate
	r.perOp = perOp
	return r
}

// Name returns the diagnostic name of the resource.
func (r *Resource) Name() string { return r.name }

// Servers returns the configured server count.
func (r *Resource) Servers() int { return r.servers }

// acquire blocks p until a server is free and claims it.
func (r *Resource) acquire(p *Proc) {
	if r.inUse < r.servers && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.eng.parked++
	p.park()
	// Whoever released transferred their server slot to us; inUse is
	// unchanged across the handoff.
}

// release frees p's server, handing it directly to the next waiter if any.
func (r *Resource) release() {
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next.eng.parked--
		next.eng.scheduleResume(next, next.eng.now)
		return
	}
	r.inUse--
}

// Acquire claims one server of r, queueing FCFS, and returns a release
// function that must be called exactly once from simulation context. It is
// the composite-usage form of Use: the caller may perform other simulated
// activities (device I/O, nested resource usage) while holding the server.
func (r *Resource) Acquire(p *Proc) (release func()) {
	start := p.eng.now
	r.acquire(p)
	r.waitNS += int64(p.eng.now.Sub(start))
	held := p.eng.now
	released := false
	return func() {
		if released {
			panic("sim: double release of resource " + r.name)
		}
		released = true
		r.busyNS += int64(p.eng.now.Sub(held))
		r.release()
		r.completed++
	}
}

// Use occupies one server of r for the given service duration, queueing
// FCFS behind earlier arrivals. It returns the total time spent (queueing
// plus service).
func (r *Resource) Use(p *Proc, service Duration) Duration {
	start := p.eng.now
	r.acquire(p)
	r.waitNS += int64(p.eng.now.Sub(start))
	r.busyNS += int64(service)
	p.Sleep(service)
	r.release()
	r.completed++
	return p.eng.now.Sub(start)
}

// UseBytes occupies one server for perOp + bytes/rate. It panics if the
// resource was not built with NewRateResource.
func (r *Resource) UseBytes(p *Proc, bytes int64) Duration {
	if r.rate <= 0 {
		panic("sim: UseBytes on a resource without a rate")
	}
	service := r.perOp + Duration(float64(bytes)/r.rate*1e9)
	return r.Use(p, service)
}

// ServiceTimeBytes reports the uncontended service time UseBytes would hold
// a server for, without acquiring anything.
func (r *Resource) ServiceTimeBytes(bytes int64) Duration {
	return r.perOp + Duration(float64(bytes)/r.rate*1e9)
}

// QueueLen reports the number of processes currently waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// InUse reports the number of currently occupied servers.
func (r *Resource) InUse() int { return r.inUse }

// Completed reports the number of completed acquisitions.
func (r *Resource) Completed() int64 { return r.completed }

// BusyTime reports total server occupancy accumulated across all servers.
func (r *Resource) BusyTime() Duration { return Duration(r.busyNS) }

// WaitTime reports total queueing delay accumulated across all users.
func (r *Resource) WaitTime() Duration { return Duration(r.waitNS) }

// Utilization reports mean per-server utilization over [0, now].
func (r *Resource) Utilization() float64 {
	t := r.eng.now
	if t == 0 {
		return 0
	}
	return float64(r.busyNS) / float64(int64(t)*int64(r.servers))
}
