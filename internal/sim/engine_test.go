package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.Schedule(50, func() { at = e.Now() }) // in the past
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", at)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		wake = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wake != Time(3*time.Second) {
		t.Fatalf("woke at %v, want 3s", time.Duration(wake))
	}
	if e.Live() != 0 {
		t.Fatalf("%d procs still live", e.Live())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, n := range []string{"a", "b", "c"} {
			n := n
			e.Spawn(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					trace = append(trace, n)
				}
			})
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSignal(t *testing.T) {
	e := NewEngine()
	var s Signal
	var done []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			done = append(done, p.Now())
		})
	}
	e.SpawnAfter(5*time.Second, "firer", func(p *Proc) { s.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("%d waiters completed, want 3", len(done))
	}
	for _, d := range done {
		if d != Time(5*time.Second) {
			t.Fatalf("waiter continued at %v, want 5s", time.Duration(d))
		}
	}
	// Wait after Fire returns immediately.
	e2 := NewEngine()
	var s2 Signal
	s2.Fire()
	ran := false
	e2.Spawn("late", func(p *Proc) { s2.Wait(p); ran = true })
	if err := e2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("late waiter never ran")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	var end Time
	for i := 1; i <= 4; i++ {
		i := i
		wg.Add(1)
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(Duration(i) * time.Second)
			wg.Done()
		})
	}
	e.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if end != Time(4*time.Second) {
		t.Fatalf("join at %v, want 4s", time.Duration(end))
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	var s Signal // never fired
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := e.RunAll()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if _, ok := err.(ErrDeadlock); !ok {
		t.Fatalf("got %T (%v), want ErrDeadlock", err, err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(time.Second, tick)
	}
	e.After(time.Second, tick)
	if err := e.Run(Time(10*time.Second + time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("ticked %d times in 10s, want 10", count)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
		q.Close()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine()
	var q Queue[int]
	total := 0
	for c := 0; c < 4; c++ {
		e.Spawn("consumer", func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					return
				}
				total++
				p.Sleep(time.Millisecond)
			}
		})
	}
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(i)
			if i%10 == 0 {
				p.Sleep(time.Millisecond / 2)
			}
		}
		q.Close()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("consumed %d, want 100", total)
	}
}
