package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceSingleServerSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, time.Second)
			ends = append(ends, p.Now())
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("end[%d] = %v, want %v", i, time.Duration(ends[i]), time.Duration(w))
		}
	}
	if r.Completed() != 3 {
		t.Fatalf("completed = %d, want 3", r.Completed())
	}
}

func TestResourceMultiServerParallel(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "pool", 3)
	var last Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, time.Second)
			last = p.Now()
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if last != Time(time.Second) {
		t.Fatalf("3 jobs on 3 servers finished at %v, want 1s", time.Duration(last))
	}
}

func TestResourceFCFS(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAfter(Duration(i)*time.Millisecond, "user", func(p *Proc) {
			r.Use(p, 100*time.Millisecond)
			order = append(order, i)
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("not FCFS: %v", order)
		}
	}
}

func TestRateResource(t *testing.T) {
	e := NewEngine()
	// 1 GB/s, 1ms per-op overhead.
	r := NewRateResource(e, "disk", 1, 1e9, time.Millisecond)
	var end Time
	e.Spawn("reader", func(p *Proc) {
		r.UseBytes(p, 500_000_000) // 0.5s transfer + 1ms
		end = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := Time(500*time.Millisecond + time.Millisecond)
	if end != want {
		t.Fatalf("end = %v, want %v", time.Duration(end), time.Duration(want))
	}
}

func TestResourceUtilizationAndWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	for i := 0; i < 2; i++ {
		e.Spawn("user", func(p *Proc) { r.Use(p, time.Second) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.Utilization(); got < 0.99 || got > 1.01 {
		t.Fatalf("utilization = %f, want ~1.0", got)
	}
	if r.WaitTime() != time.Second {
		t.Fatalf("wait = %v, want 1s", r.WaitTime())
	}
}

// Property: with s servers and n equal jobs of duration d all arriving at
// t=0, the makespan is ceil(n/s)*d.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(servers, jobs uint8) bool {
		s := int(servers%8) + 1
		n := int(jobs%32) + 1
		e := NewEngine()
		r := NewResource(e, "pool", s)
		var last Time
		for i := 0; i < n; i++ {
			e.Spawn("u", func(p *Proc) {
				r.Use(p, time.Second)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		rounds := (n + s - 1) / s
		return last == Time(rounds)*Time(time.Second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUseBytesWithoutRatePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	panicked := false
	e.Spawn("u", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		r.UseBytes(p, 10)
	})
	_ = e.RunAll()
	if !panicked {
		t.Fatal("expected panic from UseBytes without rate")
	}
}
