package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// Child stream should not simply replay the parent's.
	p2 := NewRNG(7)
	_ = p2.Uint64() // parent advanced once during Fork
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("fork correlated with parent: %d/100 equal", same)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%200) + 1
		p := NewRNG(seed).Perm(m)
		if len(p) != m {
			return false
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestLogNormalMean(t *testing.T) {
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
	r := NewRNG(5)
	mu, sigma := 1.0, 0.5
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	want := math.Exp(mu + sigma*sigma/2)
	got := sum / n
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("lognormal mean = %f, want ~%f", got, want)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.5)
	}
	if got := sum / n; math.Abs(got-3.5)/3.5 > 0.03 {
		t.Fatalf("exp mean = %f, want ~3.5", got)
	}
}

func TestUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets = 16
	counts := make([]int, buckets)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", i, c, want)
		}
	}
}
