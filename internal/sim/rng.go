package sim

import "math"

// RNG is a small, fast, deterministic random stream (splitmix64 core).
// Every stochastic component of the simulation draws from its own RNG
// seeded from the experiment seed, so runs replay exactly.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child stream; the parent advances once.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}
