package sim

// Signal is a one-shot broadcast event in virtual time: processes Wait on it
// and all continue once Fire is called. Fire-before-Wait is allowed; Wait
// then returns immediately. A Signal must not be reused after Fire.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Wait suspends p until the signal fires. Returns immediately if it already
// has.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.eng.parked++
	p.park()
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters at the current virtual time.
// Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		w.eng.parked--
		w.eng.scheduleResume(w, w.eng.now)
	}
	s.waiters = nil
}

// WaitGroup counts outstanding simulated activities, like sync.WaitGroup but
// in virtual time.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add adjusts the counter by delta. It panics if the counter goes negative.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		for _, w := range wg.waiters {
			w.eng.parked--
			w.eng.scheduleResume(w, w.eng.now)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait suspends p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.n == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.eng.parked++
	p.park()
}

// Barrier synchronises a fixed party count in virtual time, generation by
// generation: the i-th Wait of a generation releases everyone.
type Barrier struct {
	parties int
	arrived int
	waiters []*Proc
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{parties: parties}
}

// Wait blocks p until all parties of the current generation have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		for _, w := range b.waiters {
			w.eng.parked--
			w.eng.scheduleResume(w, w.eng.now)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p)
	p.eng.parked++
	p.park()
}

// Queue is an unbounded FIFO channel in virtual time: producers Put items,
// consumers Get them, blocking when empty. Multiple consumers are served in
// arrival order.
type Queue[T any] struct {
	items   []T
	waiters []*Proc
	closed  bool
}

// Put appends an item and wakes one waiting consumer, if any.
func (q *Queue[T]) Put(item T) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, item)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	w.eng.parked--
	w.eng.scheduleResume(w, w.eng.now)
}

// Get removes and returns the oldest item, blocking p until one is
// available. ok is false when the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.eng.parked++
		p.park()
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Close marks the queue closed and wakes all waiting consumers so they can
// observe the close.
func (q *Queue[T]) Close() {
	q.closed = true
	for _, w := range q.waiters {
		w.eng.parked--
		w.eng.scheduleResume(w, w.eng.now)
	}
	q.waiters = nil
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
