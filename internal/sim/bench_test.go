package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw callback events per second.
func BenchmarkEventThroughput(b *testing.B) {
	eng := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	eng.After(time.Microsecond, tick)
	b.ResetTimer()
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures process suspend/resume round trips.
func BenchmarkProcSwitch(b *testing.B) {
	eng := NewEngine()
	eng.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures queued resource usage.
func BenchmarkResourceContention(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "cpu", 2)
	per := b.N/8 + 1
	for w := 0; w < 8; w++ {
		eng.Spawn("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}
