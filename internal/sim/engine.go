// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in (time, sequence)
// order. Simulated activities are written as ordinary blocking Go code inside
// a Proc: each Proc runs on its own goroutine, but the engine resumes at most
// one Proc at a time and a Proc always parks back into the engine before any
// other event fires, so execution is single-threaded in effect and every run
// with the same seed is bit-for-bit reproducible.
//
// The kernel is the substrate for all simulated components in this
// repository: block devices (internal/device), the interconnect fabric
// (internal/simnet), the GPFS model (internal/pfs) and the training loop
// (internal/train).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration.
type Duration = time.Duration

// Seconds renders t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type eventKind uint8

const (
	evCallback eventKind = iota
	evResume
)

type event struct {
	at   Time
	seq  uint64
	kind eventKind
	fn   func()
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event     { return h[0] }
func (h *eventHeap) pushEv(e event) { heap.Push(h, e) }
func (h *eventHeap) popEv() event   { return heap.Pop(h).(event) }

// Engine is a discrete-event simulation engine. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	yield   chan struct{} // a running Proc signals here when it parks or exits
	parked  int           // procs blocked on something other than the event heap
	spawned int
	exited  int
}

// NewEngine returns a fresh engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at virtual time at. Callbacks run inline on the engine's
// event loop and must not block; use Spawn for blocking activities.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.pushEv(event{at: at, seq: e.seq, kind: evCallback, fn: fn})
}

// After runs fn a duration d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// Proc is a simulated process: a goroutine whose blocking operations
// (Sleep, resource acquisition, channel waits) consume virtual time.
type Proc struct {
	eng    *Engine
	resume chan struct{}
	name   string
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the name given at Spawn, for diagnostics.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn starts fn as a simulated process at the current virtual time.
func (e *Engine) Spawn(name string, fn func(*Proc)) {
	p := &Proc{eng: e, resume: make(chan struct{}), name: name}
	e.spawned++
	e.seq++
	e.events.pushEv(event{at: e.now, seq: e.seq, kind: evResume, proc: p})
	go func() {
		<-p.resume // wait for the engine to run our start event
		fn(p)
		e.exited++
		e.yield <- struct{}{}
	}()
}

// SpawnAfter starts fn as a simulated process after a delay.
func (e *Engine) SpawnAfter(d Duration, name string, fn func(*Proc)) {
	e.After(d, func() { e.Spawn(name, fn) })
}

// scheduleResume arranges for p to continue at time at.
func (e *Engine) scheduleResume(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.pushEv(event{at: at, seq: e.seq, kind: evResume, proc: p})
}

// park suspends the calling proc until the engine resumes it. The caller must
// already have arranged for a wake-up (a scheduled resume or registration on
// a wait list).
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for a span of virtual time. Negative durations
// are treated as zero.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleResume(p, p.eng.now.Add(d))
	p.park()
}

// Block parks the process indefinitely; it continues only when another
// activity calls Unblock. The parked process counts toward deadlock
// detection in Run.
func (p *Proc) Block() {
	p.eng.parked++
	p.park()
}

// Unblock schedules p, previously suspended via Block, to continue at the
// current virtual time.
func (p *Proc) Unblock() {
	p.eng.parked--
	p.eng.scheduleResume(p, p.eng.now)
}

// ErrDeadlock is returned by Run when processes remain blocked but no events
// are pending, meaning the simulation can make no further progress.
type ErrDeadlock struct {
	At      Time
	Blocked int
}

func (e ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) blocked with no pending events", time.Duration(e.At), e.Blocked)
}

// Run executes events until the event heap is exhausted or until virtual
// time would exceed until (use RunAll for no limit). It returns an
// ErrDeadlock if blocked processes remain when the heap drains.
func (e *Engine) Run(until Time) error {
	for len(e.events) > 0 {
		if e.events.peek().at > until {
			e.now = until
			return nil
		}
		ev := e.events.popEv()
		e.now = ev.at
		switch ev.kind {
		case evCallback:
			ev.fn()
		case evResume:
			ev.proc.resume <- struct{}{}
			<-e.yield
		}
	}
	if e.parked > 0 {
		return ErrDeadlock{At: e.now, Blocked: e.parked}
	}
	return nil
}

// RunAll executes events until none remain.
func (e *Engine) RunAll() error { return e.Run(Time(1<<62 - 1)) }

// Live reports the number of spawned processes that have not yet exited.
func (e *Engine) Live() int { return e.spawned - e.exited }

// Events reports the total number of events ever scheduled. Because every
// event carries the sequence number at which it was scheduled, two runs of
// the same seeded model are identical exactly when their event counts and
// final clocks agree — the count is a cheap replay fingerprint used by the
// determinism regression tests.
func (e *Engine) Events() uint64 { return e.seq }
