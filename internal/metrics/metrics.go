// Package metrics provides the statistics and table formatting shared by
// the experiment harness, the benchmarks and cmd/hvacbench: sample summaries
// with 95% confidence intervals (the paper reports all results as the mean
// of three repetitions with a 95% CI), CDFs for the load-distribution study
// (Fig. 15), and fixed-width table rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and summarises them.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample standard deviation (n-1 denominator).
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation (t ≈ 1.96); for the three-repetition runs
// in the paper this is the conventional reporting.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(n))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF returns (x, F(x)) pairs over the sorted observations, suitable for
// plotting a cumulative distribution.
func (s *Sample) CDF() (xs, fs []float64) {
	n := len(s.xs)
	if n == 0 {
		return nil, nil
	}
	xs = append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	fs = make([]float64, n)
	for i := range fs {
		fs[i] = float64(i+1) / float64(n)
	}
	return xs, fs
}

// CV returns the coefficient of variation (stddev/mean), a load-imbalance
// measure used in the Fig. 15 analysis.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Stddev() / m
}

// Table renders labelled rows of float columns with a header, for the
// figure/table regeneration output.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	colBase int
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row of preformatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddFloats appends a row with a string label followed by floats rendered
// with the given precision.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned fixed-width columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c)
			} else {
				fmt.Fprintf(&b, "%*s", w, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}
