package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %f", s.Stddev())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 || s.CV() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if xs, fs := s.CDF(); xs != nil || fs != nil {
		t.Fatal("empty CDF should be nil")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	mk := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(float64(i % 10))
		}
		return s.CI95()
	}
	if !(mk(1000) < mk(100) && mk(100) < mk(10)) {
		t.Fatal("CI should shrink with sample size")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %f", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1 = %f", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Fatalf("median = %f, want 50.5", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		xs, fs := s.CDF()
		if len(xs) != len(fs) {
			return false
		}
		if !sort.Float64sAreSorted(xs) {
			return false
		}
		for i := range fs {
			if fs[i] <= 0 || fs[i] > 1 {
				return false
			}
			if i > 0 && fs[i] < fs[i-1] {
				return false
			}
		}
		return s.N() == 0 || fs[len(fs)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is between min and max for any non-empty sample.
func TestMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp to a range where the running sum cannot overflow.
			s.Add(math.Mod(v, 1e12))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6*math.Abs(s.Min())-1e-9 && m <= s.Max()+1e-6*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "nodes", "gpfs", "hvac")
	tb.AddFloats("32", 1, 10.5, 8.25)
	tb.AddRow("1024", "99.0", "42.0")
	out := tb.String()
	if !strings.Contains(out, "## Fig X") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "nodes") || !strings.Contains(lines[1], "hvac") {
		t.Fatalf("bad header: %q", lines[1])
	}
	if !strings.Contains(out, "8.2") || !strings.Contains(out, "42.0") {
		t.Fatalf("missing cells:\n%s", out)
	}
}

func TestCV(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 10, 10, 10} {
		s.Add(v)
	}
	if s.CV() != 0 {
		t.Fatalf("uniform CV = %f, want 0", s.CV())
	}
	var u Sample
	u.Add(1)
	u.Add(19)
	if u.CV() <= 0.5 {
		t.Fatalf("skewed CV = %f, want > 0.5", u.CV())
	}
}
