package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Quantile is a power-of-two upper bound.
	if q := h.Quantile(0.5); q < time.Millisecond || q > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want within [1ms, 2ms]", q)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles out of order: %v %v %v", p50, p90, p99)
	}
	if p50 > 2*501*time.Microsecond {
		t.Fatalf("p50 = %v, too high", p50)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles inverted")
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 0 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.String()
	for _, want := range []string{"n=1", "mean=3ms", "p50=", "max=3ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
