package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"
)

// Histogram is a concurrency-safe log2-bucketed latency histogram, used
// by the real-mode HVAC server to report per-operation service times.
type Histogram struct {
	mu     sync.Mutex
	counts [64]int64
	total  int64
	sumNS  int64
	maxNS  int64
}

func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketOf(d)]++
	h.total++
	h.sumNS += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > h.maxNS {
		h.maxNS = ns
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean reports the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sumNS / h.total)
}

// Max reports the largest observed duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.maxNS)
}

// Quantile estimates the q-quantile (0..1) from bucket boundaries; the
// result is an upper bound of the true quantile within a factor of two.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			if b == 0 {
				return 0
			}
			return time.Duration(uint64(1) << uint(b)) // bucket upper bound
		}
	}
	return time.Duration(h.maxNS)
}

// String renders a compact summary: count, mean, p50/p90/p99, max.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.90).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
	return b.String()
}
