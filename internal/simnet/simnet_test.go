package simnet

import (
	"testing"
	"time"

	"hvac/internal/sim"
)

func testConfig() Config {
	return Config{
		LinkBandwidth:  1e9,
		BaseLatency:    10 * time.Microsecond,
		RecvCopyRate:   10e9,
		MsgOverhead:    time.Microsecond,
		NICParallelism: 1,
	}
}

func TestSendTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 2)
	var took time.Duration
	eng.Spawn("tx", func(p *sim.Proc) { took = f.Send(p, 0, 1, 100_000_000) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// serialize 100MB @1GB/s = 100ms (+1us) + 10us latency + recv 10ms (+1us)
	want := 100*time.Millisecond + time.Microsecond + 10*time.Microsecond + 10*time.Millisecond + time.Microsecond
	if took != want {
		t.Fatalf("send took %v, want %v", took, want)
	}
}

func TestLocalSendSkipsWire(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 2)
	var local, remote time.Duration
	eng.Spawn("tx", func(p *sim.Proc) {
		local = f.Send(p, 0, 0, 1_000_000)
		remote = f.Send(p, 0, 1, 1_000_000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if local >= remote {
		t.Fatalf("local send (%v) should be faster than remote (%v)", local, remote)
	}
}

func TestHotSenderContention(t *testing.T) {
	// 4 receivers pulling 10 MB each from node 0 must serialise on node 0's
	// egress: makespan ~4x a single transfer's serialisation.
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 5)
	var last sim.Time
	for i := 1; i <= 4; i++ {
		to := NodeID(i)
		eng.Spawn("rx", func(p *sim.Proc) {
			f.Send(p, 0, to, 10_000_000)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(last); got < 40*time.Millisecond {
		t.Fatalf("4x10MB from one sender took %v, want >= 40ms of serialisation", got)
	}
}

func TestDisjointPairsRunInParallel(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 4)
	var last sim.Time
	for _, pair := range [][2]NodeID{{0, 1}, {2, 3}} {
		pair := pair
		eng.Spawn("tx", func(p *sim.Proc) {
			f.Send(p, pair[0], pair[1], 10_000_000)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Each: 10ms serialize + small; parallel, so < 15ms total.
	if got := time.Duration(last); got > 15*time.Millisecond {
		t.Fatalf("disjoint transfers took %v, want ~11ms (parallel)", got)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 2)
	var took time.Duration
	eng.Spawn("c", func(p *sim.Proc) { took = f.RPC(p, 0, 1, 128, 128) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if took < 2*10*time.Microsecond {
		t.Fatalf("RPC %v faster than 2x base latency", took)
	}
	if took > 100*time.Microsecond {
		t.Fatalf("small RPC took %v, too slow", took)
	}
}

func TestCounters(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 2)
	eng.Spawn("c", func(p *sim.Proc) {
		f.Send(p, 0, 1, 1000)
		f.RPC(p, 0, 1, 10, 10)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if f.BytesMoved() != 1000 {
		t.Fatalf("bytes = %d, want 1000", f.BytesMoved())
	}
	if f.Messages() != 3 {
		t.Fatalf("messages = %d, want 3", f.Messages())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, testConfig(), 2)
	panicked := false
	eng.Spawn("c", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		f.Send(p, 0, 7, 10)
	})
	_ = eng.RunAll()
	if !panicked {
		t.Fatal("expected panic for out-of-range node")
	}
}

func TestSummitEDRProfile(t *testing.T) {
	cfg := SummitEDR()
	if cfg.LinkBandwidth != 25e9 {
		t.Fatalf("dual-rail EDR should be 25 GB/s, got %.0f", cfg.LinkBandwidth)
	}
	if cfg.BaseLatency > 2*time.Microsecond {
		t.Fatalf("EDR latency %v too high", cfg.BaseLatency)
	}
	slow := SlowEthernet()
	if slow.LinkBandwidth >= cfg.LinkBandwidth {
		t.Fatal("ethernet profile should be slower than EDR")
	}
}
