// Package simnet models the interconnect fabric of the simulated cluster:
// Summit's dual-rail Mellanox EDR InfiniBand (Table I), over which HVAC's
// Mercury-style RPCs and bulk transfers travel.
//
// Model: each node has a full-duplex NIC. A bulk transfer serialises the
// payload once, on the sender's egress link, then pays the base fabric
// latency and a receive-side processing charge (memory-copy rate, not
// re-serialisation — RDMA delivers into application buffers). This keeps
// one-to-many fan-out byte-accurate at the hot sender while avoiding
// double-counting the wire time, an approximation documented in DESIGN.md.
// Small RPCs pay latency plus per-message processing on each side.
package simnet

import (
	"fmt"
	"time"

	"hvac/internal/sim"
)

// Config describes the fabric.
type Config struct {
	// LinkBandwidth is per-node, per-direction bandwidth in bytes/second.
	LinkBandwidth float64
	// BaseLatency is the one-way small-message fabric latency.
	BaseLatency time.Duration
	// RecvCopyRate is the receive-side delivery rate in bytes/second.
	RecvCopyRate float64
	// MsgOverhead is the per-message CPU handling cost on each endpoint.
	MsgOverhead time.Duration
	// NICParallelism is the number of concurrent transfers a NIC direction
	// sustains before queueing (send queues / rails).
	NICParallelism int
}

// SummitEDR returns the dual-rail Mellanox EDR InfiniBand configuration:
// 2 rails x 100 Gb/s = 25 GB/s per node, ~1.5 us one-way latency.
func SummitEDR() Config {
	return Config{
		LinkBandwidth:  25e9,
		BaseLatency:    1500 * time.Nanosecond,
		RecvCopyRate:   24e9,
		MsgOverhead:    800 * time.Nanosecond,
		NICParallelism: 2,
	}
}

// SlowEthernet is a 10 GbE profile used in contrast tests.
func SlowEthernet() Config {
	return Config{
		LinkBandwidth:  1.25e9,
		BaseLatency:    30 * time.Microsecond,
		RecvCopyRate:   5e9,
		MsgOverhead:    5 * time.Microsecond,
		NICParallelism: 1,
	}
}

// NodeID identifies a node on the fabric.
type NodeID int

type nic struct {
	egress  *sim.Resource
	ingress *sim.Resource
}

// Fabric is the simulated interconnect.
type Fabric struct {
	eng  *sim.Engine
	cfg  Config
	nics []nic

	bytesMoved int64
	messages   int64
}

// New builds a fabric with n nodes.
func New(eng *sim.Engine, cfg Config, n int) *Fabric {
	if cfg.NICParallelism < 1 {
		cfg.NICParallelism = 1
	}
	f := &Fabric{eng: eng, cfg: cfg, nics: make([]nic, n)}
	for i := range f.nics {
		id := fmt.Sprintf("node%d", i)
		f.nics[i] = nic{
			egress:  sim.NewRateResource(eng, id+"/tx", cfg.NICParallelism, cfg.LinkBandwidth, cfg.MsgOverhead),
			ingress: sim.NewRateResource(eng, id+"/rx", cfg.NICParallelism, cfg.RecvCopyRate, cfg.MsgOverhead),
		}
	}
	return f
}

// Nodes reports the number of nodes on the fabric.
func (f *Fabric) Nodes() int { return len(f.nics) }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

func (f *Fabric) check(n NodeID) {
	if int(n) < 0 || int(n) >= len(f.nics) {
		panic(fmt.Sprintf("simnet: node %d out of range [0,%d)", n, len(f.nics)))
	}
}

// Send moves bytes from one node to another in virtual time, including
// serialisation, fabric latency and receive delivery. Local (from == to)
// transfers pay only the receive copy — HVAC clients co-located with their
// home server still cross the RPC boundary but not the wire.
func (f *Fabric) Send(p *sim.Proc, from, to NodeID, bytes int64) time.Duration {
	f.check(from)
	f.check(to)
	start := p.Now()
	f.bytesMoved += bytes
	f.messages++
	if from != to {
		f.nics[from].egress.UseBytes(p, bytes)
		p.Sleep(f.cfg.BaseLatency)
	}
	f.nics[to].ingress.UseBytes(p, bytes)
	return p.Now().Sub(start)
}

// RPC performs a small request/response round trip: request message one
// way, response message back. Payload handling for bulk data is separate
// (Send). Local RPCs skip the wire latency but still pay message handling,
// matching a loopback Mercury endpoint.
func (f *Fabric) RPC(p *sim.Proc, from, to NodeID, reqBytes, respBytes int64) time.Duration {
	f.check(from)
	f.check(to)
	start := p.Now()
	f.messages += 2
	if from != to {
		f.nics[from].egress.UseBytes(p, reqBytes)
		p.Sleep(f.cfg.BaseLatency)
		f.nics[to].ingress.UseBytes(p, reqBytes)
		f.nics[to].egress.UseBytes(p, respBytes)
		p.Sleep(f.cfg.BaseLatency)
		f.nics[from].ingress.UseBytes(p, respBytes)
	} else {
		f.nics[to].ingress.UseBytes(p, reqBytes)
		f.nics[to].ingress.UseBytes(p, respBytes)
	}
	return p.Now().Sub(start)
}

// BytesMoved reports total payload bytes sent over the fabric.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }

// Messages reports total messages (bulk sends count one, RPCs two).
func (f *Fabric) Messages() int64 { return f.messages }

// EgressUtilization reports the mean egress utilization of a node's NIC.
func (f *Fabric) EgressUtilization(n NodeID) float64 {
	f.check(n)
	return f.nics[n].egress.Utilization()
}
