// Package faultnet is a deterministic fault-injecting decorator over the
// transport.Transport interface: the harness behind HVAC's chaos test
// tier. The paper's resilience claim (§III-H — a client falls back to a
// replica or the PFS when an HVAC server dies) is only as good as the
// failure modes it is exercised against, so faultnet synthesises them on
// demand: connection refused, mid-call disconnect, response delay, hang,
// truncated frame and corrupted frame.
//
// Every decision is a pure function of (schedule seed, server name, RPC
// op, per-(server,op) call index), so a chaos run replays bit-for-bit for
// a fixed seed — the same contract the simulation kernel makes
// (DESIGN.md §6). The injector records a decision trace that tests diff
// across runs to assert exactly that.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"hvac/internal/transport"
)

// Fault enumerates the injectable failure modes.
type Fault uint8

const (
	// None lets the call through untouched.
	None Fault = iota
	// Refuse fails the call before the request leaves the client, like a
	// dead server's connection-refused.
	Refuse
	// Disconnect delivers the request to the server (its side effects
	// happen) but severs the link before the response arrives.
	Disconnect
	// Delay holds the response for Rule.Delay before delivering it.
	Delay
	// Hang never delivers the response; the call blocks until the
	// schedule's HangTimeout (or the injector's Close) and then fails.
	Hang
	// Truncate cuts the encoded response frame short, so the client's
	// decoder sees an unexpected EOF.
	Truncate
	// Corrupt flips bits in the encoded response frame, so the client's
	// decoder sees a damaged frame.
	Corrupt
	// Kill marks the server dead from this call on: the triggering call
	// and every later call to the same server — any op — fail refused.
	// One Kill rule at a chosen call index models a server crashing at
	// one instant mid-epoch.
	Kill
)

// String names the fault for traces and error messages.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Disconnect:
		return "disconnect"
	case Delay:
		return "delay"
	case Hang:
		return "hang"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Injection errors. Wrapped errors name the server, so a client with
// fallback disabled surfaces which link failed.
var (
	// ErrRefused is the injected connection-refused failure.
	ErrRefused = errors.New("faultnet: connection refused")
	// ErrDisconnected is the injected mid-call connection reset.
	ErrDisconnected = errors.New("faultnet: connection reset mid-call")
	// ErrHung is returned when a hung call hits the schedule's
	// HangTimeout or the injector is closed.
	ErrHung = errors.New("faultnet: call hung")
	// ErrKilled is returned for every call to a server a Kill rule has
	// marked dead.
	ErrKilled = errors.New("faultnet: server killed")
	// ErrUndetectedCorruption is returned when a damaged frame happens to
	// still decode; the injector refuses to deliver silently corrupted
	// bytes, because the chaos invariants require byte-identical reads.
	ErrUndetectedCorruption = errors.New("faultnet: corrupted frame decoded without error")
)

// Rule scopes one fault to a (server, op, call-index) set. The zero
// index-selector (Every == 0, Prob == 0) fires on every matching call
// from Offset on; Every == n fires on every nth matching call; Prob == p
// fires on each matching call with seeded probability p.
type Rule struct {
	// Server restricts the rule to one server name; "" matches all.
	Server string
	// Op restricts the rule to one RPC type; 0 matches all.
	Op transport.Op
	// Offset is the first per-(server,op) call index the rule can fire on.
	Offset int64
	// Every fires the rule on call indices Offset, Offset+Every, ....
	Every int64
	// Prob fires the rule on each eligible call with this probability,
	// drawn deterministically from the schedule seed.
	Prob float64
	// Fault is the failure to inject.
	Fault Fault
	// Delay is the hold time for Fault == Delay.
	Delay time.Duration
}

// matches reports whether the rule fires for call index idx of (server,
// op). ri decorrelates the probability streams of co-scoped rules.
func (r Rule) matches(seed uint64, server string, op transport.Op, idx int64, ri int) bool {
	if r.Server != "" && r.Server != server {
		return false
	}
	if r.Op != 0 && r.Op != op {
		return false
	}
	if idx < r.Offset {
		return false
	}
	if r.Every > 0 {
		return (idx-r.Offset)%r.Every == 0
	}
	if r.Prob > 0 {
		return unit(eventSeed(seed, server, op, idx)^uint64(ri)*0x9e3779b97f4a7c15) < r.Prob
	}
	return true
}

// Schedule is a complete fault plan: a seed plus an ordered rule list
// (first matching rule wins, per call).
type Schedule struct {
	// Seed drives every probabilistic decision and every frame-damage
	// pattern; equal seeds replay equal runs.
	Seed uint64
	// HangTimeout bounds Hang faults; 0 means 250 ms.
	HangTimeout time.Duration
	// Rules is the ordered fault plan.
	Rules []Rule
}

// Event is one injection decision, None included: the full decision
// trace, diffed by the determinism tests.
type Event struct {
	Server string
	Op     transport.Op
	Index  int64
	Fault  Fault
}

type countKey struct {
	server string
	op     transport.Op
}

// Injector evaluates a Schedule and decorates transports with it. One
// injector spans a whole cluster: wrap every server link of a client with
// the same injector and scope rules by server name.
type Injector struct {
	sched Schedule

	mu     sync.Mutex
	counts map[countKey]int64
	trace  []Event
	dead   map[string]bool

	closeOnce sync.Once
	closed    chan struct{}
}

// New builds an injector for the schedule.
func New(sched Schedule) *Injector {
	if sched.HangTimeout <= 0 {
		sched.HangTimeout = 250 * time.Millisecond
	}
	return &Injector{
		sched:  sched,
		counts: make(map[countKey]int64),
		dead:   make(map[string]bool),
		closed: make(chan struct{}),
	}
}

// Close releases any calls currently blocked in a Hang fault. Wrapped
// transports stay usable.
func (in *Injector) Close() {
	in.closeOnce.Do(func() { close(in.closed) })
}

// Trace returns a copy of the decision trace so far.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.trace...)
}

// Injected counts the non-None decisions so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.trace {
		if e.Fault != None {
			n++
		}
	}
	return n
}

// DeadServers returns the names of servers a Kill rule has marked dead,
// in no particular order.
func (in *Injector) DeadServers() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.dead))
	for s := range in.dead {
		out = append(out, s)
	}
	return out
}

// Wrap decorates t with the injector's schedule under the given server
// name (rule scoping and traces use the name, not t's address, so runs
// with ephemeral ports stay comparable).
func (in *Injector) Wrap(name string, t transport.Transport) transport.Transport {
	return &faultTransport{in: in, name: name, inner: t}
}

// next assigns the fault for the next call to (server, op), records it,
// and returns the call's per-(server,op) index.
func (in *Injector) next(server string, op transport.Op) (Fault, Rule, int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := countKey{server, op}
	idx := in.counts[k]
	in.counts[k] = idx + 1
	fault, rule := None, Rule{}
	if in.dead[server] {
		// A killed server never answers again, whatever the rules say.
		fault = Kill
	} else {
		for ri, r := range in.sched.Rules {
			if r.matches(in.sched.Seed, server, op, idx, ri) {
				fault, rule = r.Fault, r
				break
			}
		}
		if fault == Kill {
			in.dead[server] = true
		}
	}
	in.trace = append(in.trace, Event{Server: server, Op: op, Index: idx, Fault: fault})
	return fault, rule, idx
}

// faultTransport is the decorator: it consults the injector before each
// call and synthesises the assigned failure.
type faultTransport struct {
	in    *Injector
	name  string
	inner transport.Transport
}

func (ft *faultTransport) Addr() string { return ft.inner.Addr() }
func (ft *faultTransport) Close()       { ft.inner.Close() }

// Retries forwards the inner transport's retry accounting, if any.
func (ft *faultTransport) Retries() int64 {
	if rc, ok := ft.inner.(interface{ Retries() int64 }); ok {
		return rc.Retries()
	}
	return 0
}

func (ft *faultTransport) Call(req *transport.Request) (*transport.Response, error) {
	fault, rule, idx := ft.in.next(ft.name, req.Op)
	switch fault {
	case None:
		return ft.inner.Call(req)
	case Refuse:
		return nil, fmt.Errorf("faultnet: server %s: %w", ft.name, ErrRefused)
	case Kill:
		return nil, fmt.Errorf("faultnet: server %s: %w", ft.name, ErrKilled)
	case Disconnect:
		// The request reaches the server — its side effects (open
		// counted, copy scheduled) happen — but the response is lost.
		// Recycle its pooled payload: losing the frame must not also
		// lose the buffer.
		if resp, err := ft.inner.Call(req); err == nil {
			resp.Release()
		}
		return nil, fmt.Errorf("faultnet: server %s: %w", ft.name, ErrDisconnected)
	case Delay:
		time.Sleep(rule.Delay)
		return ft.inner.Call(req)
	case Hang:
		timer := time.NewTimer(ft.in.sched.HangTimeout)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ft.in.closed:
		}
		return nil, fmt.Errorf("faultnet: server %s: %w", ft.name, ErrHung)
	case Truncate, Corrupt:
		resp, err := ft.inner.Call(req)
		if err != nil {
			return nil, err
		}
		err = damageResponse(resp, fault, eventSeed(ft.in.sched.Seed, ft.name, req.Op, idx))
		resp.Release()
		return nil, fmt.Errorf("faultnet: server %s: %s fault: %w", ft.name, fault, err)
	default:
		return nil, fmt.Errorf("faultnet: server %s: unknown fault %d", ft.name, fault)
	}
}

// damageResponse encodes resp, damages the frame deterministically, and
// returns the decode error the client would have seen on the wire. A
// damaged frame that still decodes is refused rather than delivered.
func damageResponse(resp *transport.Response, fault Fault, seed uint64) error {
	var buf bytes.Buffer
	if err := transport.WriteResponse(&buf, resp); err != nil {
		return err
	}
	c := NewCorrupter(seed)
	frame := buf.Bytes()
	if fault == Truncate {
		frame = c.Truncate(frame)
	} else {
		frame = c.BitFlip(frame)
	}
	decoded, err := transport.ReadResponse(bytes.NewReader(frame))
	if err != nil {
		return err
	}
	// The damaged frame decoded anyway; drop the phantom response back
	// into the pool before refusing to deliver it.
	decoded.Release()
	return ErrUndetectedCorruption
}

// eventSeed derives the deterministic per-event stream for (seed, server,
// op, index).
func eventSeed(seed uint64, server string, op transport.Op, idx int64) uint64 {
	// FNV-1a over the server name, then SplitMix64 avalanche over the
	// remaining coordinates.
	h := uint64(14695981039346656037)
	for i := 0; i < len(server); i++ {
		h ^= uint64(server[i])
		h *= 1099511628211
	}
	h = splitmix64(h ^ seed)
	h = splitmix64(h ^ uint64(op)<<56 ^ uint64(idx))
	return h
}

// unit maps a 64-bit hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the SplitMix64 mixer (same construction as the transport
// retry jitter): a bijective avalanche function for deriving independent
// streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
