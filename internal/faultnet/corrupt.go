package faultnet

import "math/rand"

// Corrupter deterministically damages encoded protocol frames. The chaos
// injector uses it to synthesise wire damage; the transport fuzz tests
// use it to seed their corpora, so the fuzzer starts from exactly the
// damage patterns the chaos tier produces.
type Corrupter struct {
	rng *rand.Rand
}

// NewCorrupter builds a corrupter whose damage pattern is a pure function
// of seed.
func NewCorrupter(seed uint64) *Corrupter {
	return &Corrupter{rng: rand.New(rand.NewSource(int64(splitmix64(seed))))}
}

// Truncate cuts the frame short at a pseudorandom point, removing at
// least one byte, so a length-prefixed decoder must report an unexpected
// EOF. Frames of one byte or fewer come back empty.
func (c *Corrupter) Truncate(frame []byte) []byte {
	if len(frame) <= 1 {
		return frame[:0]
	}
	cut := c.rng.Intn(len(frame)-1) + 1 // keep [1, len-1] bytes
	return frame[:cut]
}

// BitFlip flips between one and three pseudorandomly chosen bits in a
// copy of the frame. Nil and empty frames pass through.
func (c *Corrupter) BitFlip(frame []byte) []byte {
	if len(frame) == 0 {
		return frame
	}
	out := append([]byte(nil), frame...)
	flips := c.rng.Intn(3) + 1
	for i := 0; i < flips; i++ {
		pos := c.rng.Intn(len(out))
		out[pos] ^= 1 << uint(c.rng.Intn(8))
	}
	return out
}
