package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"hvac/internal/transport"
)

// okHandler answers every op with a fixed payload.
func okHandler(req *transport.Request) *transport.Response {
	return &transport.Response{Status: transport.StatusOK, Handle: 1, Size: 4, Data: []byte("data")}
}

// drive issues calls ops against a fresh injector and returns its trace.
func drive(sched Schedule, servers int, calls int) []Event {
	in := New(sched)
	defer in.Close()
	ts := make([]transport.Transport, servers)
	for i := range ts {
		ts[i] = in.Wrap(fmt.Sprintf("srv%d", i), transport.NewSim(fmt.Sprintf("srv%d", i), okHandler))
	}
	ops := []transport.Op{transport.OpOpen, transport.OpRead, transport.OpClose}
	for c := 0; c < calls; c++ {
		t := ts[c%servers]
		_, _ = t.Call(&transport.Request{Op: ops[c%len(ops)], Path: "/pfs/f", Len: 4})
	}
	return in.Trace()
}

// The tentpole contract: a schedule replays bit-for-bit for a fixed seed,
// including the probabilistic rules, and changes when the seed changes.
func TestScheduleReplaysBitForBit(t *testing.T) {
	sched := Schedule{
		Seed:        42,
		HangTimeout: time.Millisecond,
		Rules: []Rule{
			{Server: "srv0", Op: transport.OpOpen, Every: 3, Fault: Refuse},
			{Server: "srv1", Prob: 0.5, Fault: Corrupt},
			{Op: transport.OpRead, Prob: 0.25, Fault: Truncate},
		},
	}
	t1 := drive(sched, 2, 240)
	t2 := drive(sched, 2, 240)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed produced different fault traces")
	}
	injected := 0
	for _, e := range t1 {
		if e.Fault != None {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("schedule injected nothing; the replay assertion is vacuous")
	}
	sched.Seed = 43
	t3 := drive(sched, 2, 240)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical probabilistic traces")
	}
}

func TestRuleScoping(t *testing.T) {
	in := New(Schedule{Rules: []Rule{
		{Server: "srv1", Op: transport.OpOpen, Fault: Refuse},
	}})
	defer in.Close()
	s0 := in.Wrap("srv0", transport.NewSim("srv0", okHandler))
	s1 := in.Wrap("srv1", transport.NewSim("srv1", okHandler))

	if _, err := s0.Call(&transport.Request{Op: transport.OpOpen}); err != nil {
		t.Fatalf("rule leaked to srv0: %v", err)
	}
	if _, err := s1.Call(&transport.Request{Op: transport.OpRead}); err != nil {
		t.Fatalf("rule leaked to OpRead: %v", err)
	}
	_, err := s1.Call(&transport.Request{Op: transport.OpOpen})
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("scoped rule did not fire: %v", err)
	}
	if !strings.Contains(err.Error(), "srv1") {
		t.Fatalf("error does not name the failing server: %v", err)
	}
}

func TestEveryOffsetIndexing(t *testing.T) {
	in := New(Schedule{Rules: []Rule{
		{Offset: 2, Every: 3, Fault: Refuse},
	}})
	defer in.Close()
	tr := in.Wrap("srv0", transport.NewSim("srv0", okHandler))
	var failed []int
	for i := 0; i < 9; i++ {
		if _, err := tr.Call(&transport.Request{Op: transport.OpOpen}); err != nil {
			failed = append(failed, i)
		}
	}
	if want := []int{2, 5, 8}; !reflect.DeepEqual(failed, want) {
		t.Fatalf("Offset+Every fired on calls %v, want %v", failed, want)
	}
}

func TestEachFaultSurface(t *testing.T) {
	for _, tc := range []struct {
		fault   Fault
		wantErr error
	}{
		{Refuse, ErrRefused},
		{Disconnect, ErrDisconnected},
		{Hang, ErrHung},
		{Truncate, nil},
		{Corrupt, nil},
	} {
		t.Run(tc.fault.String(), func(t *testing.T) {
			calls := 0
			inner := transport.NewSim("srv0", func(req *transport.Request) *transport.Response {
				calls++
				return okHandler(req)
			})
			in := New(Schedule{HangTimeout: 5 * time.Millisecond, Rules: []Rule{{Fault: tc.fault}}})
			defer in.Close()
			tr := in.Wrap("srv0", inner)
			resp, err := tr.Call(&transport.Request{Op: transport.OpRead, Len: 4})
			if err == nil {
				t.Fatalf("fault %s delivered a response: %+v", tc.fault, resp)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("fault %s returned %v, want %v", tc.fault, err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "srv0") {
				t.Fatalf("fault %s error does not name the server: %v", tc.fault, err)
			}
			switch tc.fault {
			case Refuse, Hang:
				if calls != 0 {
					t.Fatalf("%s reached the server", tc.fault)
				}
			default:
				if calls != 1 {
					t.Fatalf("%s reached the server %d times, want 1", tc.fault, calls)
				}
			}
		})
	}
}

func TestDelayDeliversLate(t *testing.T) {
	in := New(Schedule{Rules: []Rule{{Fault: Delay, Delay: 20 * time.Millisecond}}})
	defer in.Close()
	tr := in.Wrap("srv0", transport.NewSim("srv0", okHandler))
	start := time.Now()
	resp, err := tr.Call(&transport.Request{Op: transport.OpRead, Len: 4})
	if err != nil || !resp.OK() {
		t.Fatalf("delayed call failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay fault returned after %v, want >= 20ms", elapsed)
	}
}

func TestInjectorCloseReleasesHangs(t *testing.T) {
	in := New(Schedule{HangTimeout: time.Minute, Rules: []Rule{{Fault: Hang}}})
	tr := in.Wrap("srv0", transport.NewSim("srv0", okHandler))
	done := make(chan error, 1)
	go func() {
		_, err := tr.Call(&transport.Request{Op: transport.OpPing})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	in.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHung) {
			t.Fatalf("released hang returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the hung call")
	}
}

// Damaged frames must fail decode (or be refused) — never silently
// deliver corrupt bytes.
func TestCorrupterDamagesFramesDeterministically(t *testing.T) {
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{0xAB}, 512)
	if err := transport.WriteResponse(&buf, &transport.Response{Status: transport.StatusOK, Size: 512, Data: payload}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for seed := uint64(0); seed < 64; seed++ {
		c1, c2 := NewCorrupter(seed), NewCorrupter(seed)
		t1, t2 := c1.Truncate(append([]byte(nil), frame...)), c2.Truncate(append([]byte(nil), frame...))
		if !bytes.Equal(t1, t2) {
			t.Fatalf("seed %d: truncation not deterministic", seed)
		}
		if len(t1) >= len(frame) {
			t.Fatalf("seed %d: truncation removed nothing", seed)
		}
		if _, err := transport.ReadResponse(bytes.NewReader(t1)); err == nil {
			t.Fatalf("seed %d: truncated frame decoded cleanly", seed)
		}
		b1, b2 := c1.BitFlip(append([]byte(nil), frame...)), c2.BitFlip(append([]byte(nil), frame...))
		if !bytes.Equal(b1, b2) {
			t.Fatalf("seed %d: bit flips not deterministic", seed)
		}
	}
}

// TestKillMarksServerDead: a Kill rule at a call index fails that call
// and every later call to the same server — any op — while other
// servers stay untouched, and the trace still replays bit-for-bit.
func TestKillMarksServerDead(t *testing.T) {
	sched := Schedule{Rules: []Rule{
		{Server: "srv0", Op: transport.OpOpen, Offset: 2, Fault: Kill},
	}}
	in := New(sched)
	defer in.Close()
	s0 := in.Wrap("srv0", transport.NewSim("srv0", okHandler))
	s1 := in.Wrap("srv1", transport.NewSim("srv1", okHandler))

	for i := 0; i < 2; i++ {
		if _, err := s0.Call(&transport.Request{Op: transport.OpOpen, Path: "/pfs/f"}); err != nil {
			t.Fatalf("open %d before the kill index failed: %v", i, err)
		}
	}
	if _, err := s0.Call(&transport.Request{Op: transport.OpOpen, Path: "/pfs/f"}); !errors.Is(err, ErrKilled) {
		t.Fatalf("open at the kill index: got %v, want ErrKilled", err)
	}
	// Dead is sticky and spans every op, not just the triggering one.
	for _, op := range []transport.Op{transport.OpRead, transport.OpPing, transport.OpClose, transport.OpOpen} {
		if _, err := s0.Call(&transport.Request{Op: op}); !errors.Is(err, ErrKilled) {
			t.Fatalf("op %d after kill: got %v, want ErrKilled", op, err)
		}
	}
	if _, err := s1.Call(&transport.Request{Op: transport.OpOpen, Path: "/pfs/f"}); err != nil {
		t.Fatalf("kill leaked to srv1: %v", err)
	}
	if dead := in.DeadServers(); len(dead) != 1 || dead[0] != "srv0" {
		t.Fatalf("DeadServers() = %v, want [srv0]", dead)
	}

	// The whole sequence, replayed on a fresh injector, produces the
	// identical decision trace.
	in2 := New(sched)
	defer in2.Close()
	r0 := in2.Wrap("srv0", transport.NewSim("srv0", okHandler))
	r1 := in2.Wrap("srv1", transport.NewSim("srv1", okHandler))
	for i := 0; i < 3; i++ {
		_, _ = r0.Call(&transport.Request{Op: transport.OpOpen, Path: "/pfs/f"})
	}
	for _, op := range []transport.Op{transport.OpRead, transport.OpPing, transport.OpClose, transport.OpOpen} {
		_, _ = r0.Call(&transport.Request{Op: op})
	}
	_, _ = r1.Call(&transport.Request{Op: transport.OpOpen, Path: "/pfs/f"})
	if !reflect.DeepEqual(in.Trace(), in2.Trace()) {
		t.Fatal("kill schedule did not replay bit-for-bit")
	}
}

// TestPermanentlySlowServer: a Delay rule with no Every/Prob selector is
// a permanently slow server — every call from Offset on is held.
func TestPermanentlySlowServer(t *testing.T) {
	in := New(Schedule{Rules: []Rule{
		{Server: "srv0", Offset: 1, Fault: Delay, Delay: 10 * time.Millisecond},
	}})
	defer in.Close()
	tr := in.Wrap("srv0", transport.NewSim("srv0", okHandler))

	start := time.Now()
	if _, err := tr.Call(&transport.Request{Op: transport.OpRead, Len: 4}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("call before Offset was delayed %v", elapsed)
	}
	for i := 0; i < 3; i++ {
		start = time.Now()
		resp, err := tr.Call(&transport.Request{Op: transport.OpRead, Len: 4})
		if err != nil || !resp.OK() {
			t.Fatalf("slow call %d failed: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
			t.Fatalf("slow call %d returned after %v, want >= 10ms", i, elapsed)
		}
	}
}

func TestFaultStringNames(t *testing.T) {
	for f := None; f <= Kill; f++ {
		if strings.HasPrefix(f.String(), "fault(") {
			t.Fatalf("fault %d has no name", f)
		}
	}
	if Fault(200).String() != "fault(200)" {
		t.Fatal("unknown fault misrendered")
	}
}
