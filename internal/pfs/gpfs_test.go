package pfs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

func smallConfig() Config {
	return Config{
		MetadataServers:    2,
		OpenService:        100 * time.Microsecond,
		CloseService:       20 * time.Microsecond,
		TokenContention:    0.001,
		DataStreams:        8,
		AggregateBandwidth: 4e9,
		ReadOverhead:       10 * time.Microsecond,
		ClientOverhead:     time.Microsecond,
	}
}

func makeNS(n int, size int64) *vfs.Namespace {
	ns := vfs.NewNamespace()
	for i := 0; i < n; i++ {
		ns.Add(fmt.Sprintf("/data/f%05d", i), size)
	}
	return ns
}

func TestOpenReadClose(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, smallConfig(), makeNS(10, 1000))
	c := g.Client(nil, 0)
	eng.Spawn("r", func(p *sim.Proc) {
		h, size, err := c.Open(p, "/data/f00003")
		if err != nil || size != 1000 {
			t.Errorf("open = %d,%v", size, err)
			return
		}
		n, err := c.ReadAt(p, h, 0, 1000)
		if err != nil || n != 1000 {
			t.Errorf("read = %d,%v", n, err)
		}
		n, err = c.ReadAt(p, h, 900, 500)
		if err != nil || n != 100 {
			t.Errorf("short read = %d,%v (want 100)", n, err)
		}
		if err := c.Close(p, h); err != nil {
			t.Errorf("close: %v", err)
		}
		if _, err := c.ReadAt(p, h, 0, 1); !errors.Is(err, vfs.ErrBadHandle) {
			t.Errorf("read after close = %v, want ErrBadHandle", err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	opens, reads, bytes := g.Stats()
	if opens != 1 || reads != 2 || bytes != 1100 {
		t.Fatalf("stats = %d,%d,%d", opens, reads, bytes)
	}
}

func TestOpenMissing(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, smallConfig(), makeNS(1, 10))
	c := g.Client(nil, 0)
	eng.Spawn("r", func(p *sim.Proc) {
		if _, _, err := c.Open(p, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("err = %v, want ErrNotExist", err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// Metadata saturation: open throughput is capped by the MDS pool no matter
// how many clients issue opens — the Fig. 3 mechanism.
func TestMetadataSaturation(t *testing.T) {
	throughput := func(clients int) float64 {
		eng := sim.NewEngine()
		g := New(eng, smallConfig(), makeNS(100, 32<<10))
		c := g.Client(nil, 0)
		const opsPerClient = 50
		var done sim.Time
		for i := 0; i < clients; i++ {
			eng.Spawn("c", func(p *sim.Proc) {
				for k := 0; k < opsPerClient; k++ {
					h, size, err := c.Open(p, "/data/f00000")
					if err != nil {
						t.Error(err)
						return
					}
					c.ReadAt(p, h, 0, size)
					c.Close(p, h)
				}
				if p.Now() > done {
					done = p.Now()
				}
			})
		}
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return float64(clients*opsPerClient) / sim.Time(done).Seconds()
	}
	t1 := throughput(1)
	t8 := throughput(8)
	t64 := throughput(64)
	// One client is latency-bound: far below the pool ceiling.
	if t8 < 2*t1 {
		t.Fatalf("8 clients (%.0f tps) should scale well beyond 1 client (%.0f tps)", t8, t1)
	}
	// With MDS pool of 2 @ (100+20)us the txn ceiling is ~16.7k/s; 64
	// clients must not exceed it.
	if t64 > 18000 {
		t.Fatalf("64-client throughput %.0f tps exceeds metadata ceiling", t64)
	}
	// Saturation: growing clients 8x from 8 to 64 must gain < 3x.
	if t64 > 3*t8 {
		t.Fatalf("no saturation: t8=%.0f t64=%.0f", t8, t64)
	}
}

// Token contention: the same offered load gets slower when many more
// clients are registered — the degradation past the Fig. 8 peak.
func TestTokenContentionDegradation(t *testing.T) {
	elapsed := func(registered int) time.Duration {
		eng := sim.NewEngine()
		g := New(eng, smallConfig(), makeNS(10, 1000))
		g.RegisterClients(registered)
		c := g.Client(nil, 0)
		var end sim.Time
		eng.Spawn("c", func(p *sim.Proc) {
			for k := 0; k < 100; k++ {
				h, _, _ := c.Open(p, "/data/f00001")
				c.Close(p, h)
			}
			end = p.Now()
		})
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(end)
	}
	small := elapsed(10)
	big := elapsed(5000)
	if big <= small {
		t.Fatalf("metadata time with 5000 clients (%v) should exceed 10 clients (%v)", big, small)
	}
}

// Bandwidth saturation: large reads are capped by aggregate NSD bandwidth —
// the Fig. 4 mechanism.
func TestBandwidthSaturation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig() // 4 GB/s aggregate
	g := New(eng, cfg, makeNS(64, 8<<20))
	var end sim.Time
	const clients = 32
	for i := 0; i < clients; i++ {
		i := i
		c := g.Client(nil, 0)
		eng.Spawn("c", func(p *sim.Proc) {
			for k := 0; k < 4; k++ {
				path := fmt.Sprintf("/data/f%05d", (i*4+k)%64)
				if _, err := vfs.ReadFile(p, c, path); err != nil {
					t.Error(err)
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	moved := float64(clients * 4 * (8 << 20))
	bw := moved / sim.Time(end).Seconds()
	if bw > cfg.AggregateBandwidth*1.05 {
		t.Fatalf("achieved %.2f GB/s, above the %.2f GB/s aggregate cap", bw/1e9, cfg.AggregateBandwidth/1e9)
	}
	if bw < cfg.AggregateBandwidth*0.5 {
		t.Fatalf("achieved %.2f GB/s, should approach the aggregate cap under 32 streams", bw/1e9)
	}
}

func TestClientNICAccounting(t *testing.T) {
	eng := sim.NewEngine()
	fabric := simnet.New(eng, simnet.SummitEDR(), 2)
	g := New(eng, smallConfig(), makeNS(4, 1<<20))
	c := g.Client(fabric, 1)
	eng.Spawn("r", func(p *sim.Proc) {
		if _, err := vfs.ReadFile(p, c, "/data/f00000"); err != nil {
			t.Error(err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fabric.BytesMoved() != 1<<20 {
		t.Fatalf("fabric bytes = %d, want 1 MiB", fabric.BytesMoved())
	}
}

func TestAlpineDefaults(t *testing.T) {
	cfg := Alpine()
	if cfg.AggregateBandwidth != 2.5e12 {
		t.Fatalf("Alpine aggregate = %.1f TB/s, want 2.5 (Table/§IV-A1)", cfg.AggregateBandwidth/1e12)
	}
	// The metadata txn ceiling must be comparable to the 8MB bandwidth
	// ceiling (so the Fig. 4 plateau sits near the data path's limit,
	// far below NVMe's linear scaling) and far below the 32KB bandwidth
	// ceiling (so Fig. 3 is metadata-bound).
	txnCeiling := float64(cfg.MetadataServers) / (cfg.OpenService + cfg.CloseService).Seconds()
	bwCeiling8MB := cfg.AggregateBandwidth / (8 << 20)
	if txnCeiling < bwCeiling8MB/2 {
		t.Fatalf("metadata ceiling %.0f too far below 8MB bandwidth ceiling %.0f", txnCeiling, bwCeiling8MB)
	}
	bwCeiling32KB := cfg.AggregateBandwidth / (32 << 10)
	if txnCeiling >= bwCeiling32KB {
		t.Fatalf("metadata ceiling %.0f must be below 32KB bandwidth ceiling %.0f", txnCeiling, bwCeiling32KB)
	}
	zero := New(sim.NewEngine(), Config{}, vfs.NewNamespace())
	if zero.Config().MetadataServers == 0 {
		t.Fatal("zero config not defaulted")
	}
}
