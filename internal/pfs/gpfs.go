// Package pfs models the shared parallel file system of the simulated
// substrate: Alpine, Summit's 250 PB IBM Spectrum Scale (GPFS) system,
// reachable from every compute node at an aggregate 2.5 TB/s (§IV-A1).
//
// The model captures the two mechanisms the paper's motivation section
// (§II-C) measures with MDTest:
//
//   - Metadata: every <open> consults a metadata-server pool that also
//     issues the lock/token for the file. The pool has a fixed number of
//     servers; per-operation service time grows mildly with the number of
//     active clients (token/lock state management), so open throughput
//     saturates and then degrades slightly at extreme scale — the
//     "GPFS saturates at 1,024 nodes" effect in Fig. 8.
//   - Data: reads stream from a pool of NSD data servers whose combined
//     bandwidth is capped (2.5 TB/s for Alpine), so large-file workloads
//     shift from metadata-bound to bandwidth-bound (Fig. 4).
package pfs

import (
	"fmt"
	"time"

	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

// Config parameterises the GPFS model. Zero fields are filled from Alpine.
type Config struct {
	// MetadataServers is the size of the MDS pool.
	MetadataServers int
	// OpenService is the base metadata service time per open (lookup +
	// token grant) at an idle system.
	OpenService time.Duration
	// CloseService is the metadata service time per close (token release).
	CloseService time.Duration
	// TokenContention is the fractional increase in metadata service time
	// per registered active client, modelling distributed lock state
	// maintenance: service = base * (1 + TokenContention*clients).
	TokenContention float64
	// DataStreams is the number of concurrent read streams the NSD/disk
	// layer services before queueing (Alpine is HDD-based; this is
	// drive-level parallelism, tens of thousands).
	DataStreams int
	// AggregateBandwidth is the combined read bandwidth of the data
	// path, B/s — a shared bus all streams serialise on.
	AggregateBandwidth float64
	// ReadOverhead is the per-read-op issue latency (HDD seek + NSD
	// processing; milliseconds on a disk-based system like Alpine).
	ReadOverhead time.Duration
	// ClientOverhead is per-call client-side VFS/GPFS-client CPU cost.
	ClientOverhead time.Duration
}

// Alpine returns the configuration calibrated to Summit's Alpine file
// system: 2.5 TB/s aggregate, metadata throughput in the few-hundred-
// thousand transactions/s range so that 32 KB MDTest saturates on metadata
// while 8 MB MDTest saturates on bandwidth, as in Figs. 3-4.
func Alpine() Config {
	return Config{
		MetadataServers:    24,
		OpenService:        120 * time.Microsecond,
		CloseService:       30 * time.Microsecond,
		TokenContention:    0.00006,
		DataStreams:        20000,
		AggregateBandwidth: 2.5e12,
		ReadOverhead:       1800 * time.Microsecond,
		ClientOverhead:     8 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := Alpine()
	if c.MetadataServers == 0 {
		c.MetadataServers = d.MetadataServers
	}
	if c.OpenService == 0 {
		c.OpenService = d.OpenService
	}
	if c.CloseService == 0 {
		c.CloseService = d.CloseService
	}
	if c.DataStreams == 0 {
		c.DataStreams = d.DataStreams
	}
	if c.AggregateBandwidth == 0 {
		c.AggregateBandwidth = d.AggregateBandwidth
	}
	if c.ReadOverhead == 0 {
		c.ReadOverhead = d.ReadOverhead
	}
	if c.ClientOverhead == 0 {
		c.ClientOverhead = d.ClientOverhead
	}
	return c
}

// GPFS is the shared parallel file system instance. The data path has two
// stages, like internal/device: an issue stage with DataStreams-way
// concurrency charging the per-read latency, then a shared bus
// serialising payload bytes at the aggregate bandwidth — so small-file
// workloads are latency/metadata-bound while large concurrent reads
// saturate at 2.5 TB/s (Figs. 3 vs 4).
type GPFS struct {
	eng     *sim.Engine
	cfg     Config
	ns      *vfs.Namespace
	mds     *sim.Resource
	issue   *sim.Resource
	dataBus *sim.Resource

	activeClients int
	opens         int64
	reads         int64
	bytesRead     int64
}

// New builds a GPFS over the namespace ns.
func New(eng *sim.Engine, cfg Config, ns *vfs.Namespace) *GPFS {
	cfg = cfg.withDefaults()
	return &GPFS{
		eng:     eng,
		cfg:     cfg,
		ns:      ns,
		mds:     sim.NewResource(eng, "gpfs/mds", cfg.MetadataServers),
		issue:   sim.NewResource(eng, "gpfs/nsd-issue", cfg.DataStreams),
		dataBus: sim.NewRateResource(eng, "gpfs/nsd-bus", 1, cfg.AggregateBandwidth, 0),
	}
}

// Namespace returns the backing namespace.
func (g *GPFS) Namespace() *vfs.Namespace { return g.ns }

// Config returns the effective configuration.
func (g *GPFS) Config() Config { return g.cfg }

// RegisterClients adds n active clients for token-contention accounting;
// call with a negative n to deregister.
func (g *GPFS) RegisterClients(n int) {
	g.activeClients += n
	if g.activeClients < 0 {
		panic("pfs: negative active client count")
	}
}

// ActiveClients reports the registered client count.
func (g *GPFS) ActiveClients() int { return g.activeClients }

func (g *GPFS) metaFactor() float64 {
	return 1 + g.cfg.TokenContention*float64(g.activeClients)
}

// OpenMeta charges one metadata open (lookup + token) in virtual time and
// reports the file's size without allocating a handle. HVAC's data-mover
// uses the same metadata path when it copies a file out of GPFS.
func (g *GPFS) OpenMeta(p *sim.Proc, path string) (int64, error) {
	p.Sleep(g.cfg.ClientOverhead)
	g.mds.Use(p, time.Duration(float64(g.cfg.OpenService)*g.metaFactor()))
	size, ok := g.ns.Lookup(path)
	if !ok {
		return 0, fmt.Errorf("gpfs: open %s: %w", path, vfs.ErrNotExist)
	}
	g.opens++
	return size, nil
}

// CloseMeta charges one metadata close (token release).
func (g *GPFS) CloseMeta(p *sim.Proc) {
	p.Sleep(g.cfg.ClientOverhead)
	g.mds.Use(p, time.Duration(float64(g.cfg.CloseService)*g.metaFactor()))
}

// ReadBytes charges a read of n bytes against the NSD data path.
func (g *GPFS) ReadBytes(p *sim.Proc, n int64) {
	p.Sleep(g.cfg.ClientOverhead)
	g.issue.Use(p, g.cfg.ReadOverhead)
	g.dataBus.UseBytes(p, n)
	g.reads++
	g.bytesRead += n
}

// Stats reports op counters: opens, read ops, bytes read.
func (g *GPFS) Stats() (opens, reads, bytes int64) { return g.opens, g.reads, g.bytesRead }

// MDSUtilization reports mean utilization of the metadata pool.
func (g *GPFS) MDSUtilization() float64 { return g.mds.Utilization() }

// DataUtilization reports mean utilization of the data bus.
func (g *GPFS) DataUtilization() float64 { return g.dataBus.Utilization() }

// Client returns a per-node vfs.FS view of the file system. Reads
// additionally traverse the node's NIC on fabric f (nil to skip NIC
// accounting, e.g. in isolated unit tests).
func (g *GPFS) Client(f *simnet.Fabric, node simnet.NodeID) *Client {
	return &Client{fs: g, fabric: f, node: node, handles: vfs.NewHandleTable()}
}

// Client is a node-local mount of the shared GPFS.
type Client struct {
	fs      *GPFS
	fabric  *simnet.Fabric
	node    simnet.NodeID
	handles *vfs.HandleTable
}

var _ vfs.FS = (*Client)(nil)

// Name implements vfs.FS.
func (c *Client) Name() string { return "gpfs" }

// Open implements vfs.FS: one metadata transaction against the MDS pool.
func (c *Client) Open(p *sim.Proc, path string) (vfs.Handle, int64, error) {
	size, err := c.fs.OpenMeta(p, path)
	if err != nil {
		return 0, 0, err
	}
	return c.handles.Open(path, size), size, nil
}

// ReadAt implements vfs.FS: streams from the NSD pool through the node NIC.
func (c *Client) ReadAt(p *sim.Proc, h vfs.Handle, off, n int64) (int64, error) {
	_, size, err := c.handles.Get(h)
	if err != nil {
		return 0, err
	}
	n = vfs.ClampRead(size, off, n)
	if n == 0 {
		return 0, nil
	}
	c.fs.ReadBytes(p, n)
	if c.fabric != nil {
		// Payload delivery into the node; the NSD side is already
		// accounted in the data pool.
		c.fabric.Send(p, c.node, c.node, n)
	}
	return n, nil
}

// Close implements vfs.FS: one metadata token release.
func (c *Client) Close(p *sim.Proc, h vfs.Handle) error {
	if err := c.handles.Close(h); err != nil {
		return err
	}
	c.fs.CloseMeta(p)
	return nil
}
