#!/bin/sh
# bench.sh — the short benchmark tier. Two artifacts:
#
#   BENCH_PR4.json (ISSUE 4): codec and server read-path benchmarks with
#   fixed iteration counts next to the committed pre-pooling baseline, so
#   the allocation/latency win is a recorded artifact rather than a
#   claim. The allocs/op columns are the stable cross-machine signal
#   (also pinned by alloc_test.go / perf_test.go).
#
#   BENCH_PR5.json (ISSUE 5): the cold-path benchmarks next to the
#   committed pre-serve-from-fill baseline. The stable signals are the
#   counted columns: pfsopens/op (2 per cold file before, exactly 1
#   after) and rpcs/op (3 per small file before, ~1 per (server, batch)
#   after).
#
#   BENCH_PR9.json (ISSUE 9): the clairvoyant first-epoch curve — one
#   cold 256-file epoch at plan horizons 0/64/256/1024 next to the warm
#   floor, plus ColdEpoch64 against its pre-PR number (the fill path now
#   copies in-kernel through one shared descriptor). The stable signals
#   are demandfills/op (256 unplanned, ~0 at horizon >= 64),
#   prefetched_frac and hitrate; wall-clock cold/warm ratios are
#   machine-bound (see EXPERIMENTS.md on single-core overlap).
#
#   BENCH_PR10.json (ISSUE 10): warm whole-file reads over real TCP at
#   64 KiB and 1 MiB with the zero-copy serve plane armed and disarmed.
#   The stable cross-machine signals are zcsends/op (~1 armed on Linux,
#   0 disarmed — every warm serve left through sendfile) and the pinned
#   0 payload allocs/op (alloc_test.go); MB/s over loopback is
#   machine-bound and can favor either path (lo has no NIC DMA, so
#   sendfile's skipped user-space copy buys CPU, not loopback
#   wall-clock — see EXPERIMENTS.md).
#
# CI runs this as a non-gating step; wall-clock numbers from shared
# runners are indicative only.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR4.json}
OUT5=${2:-BENCH_PR5.json}
OUT7=${3:-BENCH_PR7.json}
OUT9=${4:-BENCH_PR9.json}
OUT10=${5:-BENCH_PR10.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo '--- transport benchmarks' >&2
go test -run '^$' -bench 'WriteResponse64K|ReadResponse64K|WriteRequestBase|ReadRequestBase|RPCRoundTrip|BulkResponse1MB' \
	-benchmem -benchtime 3000x ./internal/transport | tee -a "$TMP" >&2

echo '--- core benchmarks' >&2
go test -run '^$' -bench 'HandleReadWarm|ConcurrentClientsRead' \
	-benchmem -benchtime 2000x ./internal/core | tee -a "$TMP" >&2

# Convert `go test -bench` lines into JSON entries keyed by benchmark
# name (GOMAXPROCS suffix stripped; the MB/s column is optional).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bop = ""; allocs = ""; mbs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "B/op") bop = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
		if ($i == "MB/s") mbs = $(i - 1)
	}
	if (ns == "") next
	if (out != "") out = out ",\n"
	entry = sprintf("    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s", name, ns, bop, allocs)
	if (mbs != "") entry = entry sprintf(", \"mb_s\": %s", mbs)
	out = out entry "}"
}
END { print out }
' "$TMP" > "$TMP.json"

cat > "$OUT" <<EOF
{
  "issue": 4,
  "description": "Hot read path: pooled frames, vectored writes, sharded stats, client readahead. Baseline measured on the pre-PR tree (commit c2d71bd) with the same benchmarks and -benchtime; allocs_op is the stable cross-machine signal.",
  "benchtime": {"transport": "3000x", "core": "2000x"},
  "baseline": {
    "BenchmarkWriteResponse64K": {"ns_op": 100.4, "b_op": 55, "allocs_op": 2},
    "BenchmarkReadResponse64K": {"ns_op": 12904, "b_op": 73842, "allocs_op": 3},
    "BenchmarkWriteRequestBase": {"ns_op": 41.65, "b_op": 64, "allocs_op": 1},
    "BenchmarkReadRequestBase": {"ns_op": 143.4, "b_op": 148, "allocs_op": 4},
    "BenchmarkRPCRoundTrip": {"ns_op": 17443, "b_op": 396, "allocs_op": 11},
    "BenchmarkBulkResponse1MB": {"ns_op": 528034, "b_op": 1057072, "allocs_op": 10},
    "BenchmarkHandleReadWarm": {"ns_op": 13161, "b_op": 65600, "allocs_op": 2}
  },
  "after": {
$(cat "$TMP.json")
  }
}
EOF
rm -f "$TMP.json"

echo "bench: wrote $OUT" >&2

# --- ISSUE 5: cold path + batched small files -------------------------

: > "$TMP"
echo '--- cold-path benchmarks' >&2
go test -run '^$' -bench 'ColdEpoch64|SmallFilesPerFile256|SmallFilesBatch256' \
	-benchtime 50x ./internal/core | tee -a "$TMP" >&2

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; popens = ""; pbytes = ""; rpcs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "pfsopens/op") popens = $(i - 1)
		if ($i == "pfsbytes/op") pbytes = $(i - 1)
		if ($i == "rpcs/op") rpcs = $(i - 1)
	}
	if (ns == "") next
	if (out != "") out = out ",\n"
	entry = sprintf("    \"%s\": {\"ns_op\": %s", name, ns)
	if (popens != "") entry = entry sprintf(", \"pfsopens_op\": %s", popens)
	if (pbytes != "") entry = entry sprintf(", \"pfsbytes_op\": %s", pbytes)
	if (rpcs != "") entry = entry sprintf(", \"rpcs_op\": %s", rpcs)
	out = out entry "}"
}
END { print out }
' "$TMP" > "$TMP.json"

cat > "$OUT5" <<EOF
{
  "issue": 5,
  "description": "Cold path: serve-from-fill (one PFS pass per cold file instead of two), priority demand/prefetch movers, OpReadBatch scatter-gather reads. Baseline measured on the pre-PR tree (commit be22bc8) with the same benchmarks and -benchtime 50x; BenchmarkSmallFilesBatch256 has no baseline because ReadBatch did not exist — its comparison point is BenchmarkSmallFilesPerFile256. The counted columns (pfsopens_op, pfsbytes_op, rpcs_op) are the stable cross-machine signal.",
  "benchtime": "50x",
  "baseline": {
    "BenchmarkColdEpoch64": {"ns_op": 10180574, "pfsopens_op": 128, "pfsbytes_op": 8388608},
    "BenchmarkSmallFilesPerFile256": {"ns_op": 12733518, "rpcs_op": 768}
  },
  "after": {
$(cat "$TMP.json")
  }
}
EOF
rm -f "$TMP.json"

echo "bench: wrote $OUT5" >&2

# --- ISSUE 7: failover epoch under a mid-epoch kill -------------------

: > "$TMP"
echo '--- failover benchmarks' >&2
go test -run '^$' -bench 'FailoverEpoch' \
	-benchtime 30x ./internal/core | tee -a "$TMP" >&2

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; popens = ""; fovers = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "pfsopens/op") popens = $(i - 1)
		if ($i == "failovers/op") fovers = $(i - 1)
	}
	if (ns == "") next
	if (out != "") out = out ",\n"
	entry = sprintf("    \"%s\": {\"ns_op\": %s", name, ns)
	if (popens != "") entry = entry sprintf(", \"pfsopens_op\": %s", popens)
	if (fovers != "") entry = entry sprintf(", \"failovers_op\": %s", fovers)
	out = out entry "}"
}
END { print out }
' "$TMP" > "$TMP.json"

cat > "$OUT7" <<EOF
{
  "issue": 7,
  "description": "Live failover: a Kill schedule takes the busiest of 3 servers down mid-way through a warm 48-file epoch. R2 runs with replica warming (fill-time hints populate each key's secondary), R1 is the un-replicated degradation control. BenchmarkFailoverEpochR2 has no pre-PR baseline because replica failover did not exist — its comparison point is BenchmarkFailoverEpochR1. The counted columns are the stable cross-machine signal: pfsopens_op sums every PFS pass of the measured epoch (server read-throughs + client fallbacks + mid-read degrades) and must stay 0 at R=2; failovers_op counts the opens the kill migrated to a replica.",
  "benchtime": "30x",
  "baseline": {
    "BenchmarkFailoverEpochR1": {"ns_op": 2034989, "pfsopens_op": 10, "failovers_op": 0}
  },
  "after": {
$(cat "$TMP.json")
  }
}
EOF
rm -f "$TMP.json"

echo "bench: wrote $OUT7" >&2

# --- ISSUE 9: clairvoyant first-epoch curve ---------------------------

: > "$TMP"
echo '--- clairvoyant benchmarks' >&2
go test -run '^$' -bench 'ClairvoyantColdEpoch256|WarmEpoch256|ColdEpoch64' \
	-benchtime 20x ./internal/core | tee -a "$TMP" >&2

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; popens = ""; pbytes = ""; dfills = ""; pfrac = ""; hrate = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "pfsopens/op") popens = $(i - 1)
		if ($i == "pfsbytes/op") pbytes = $(i - 1)
		if ($i == "demandfills/op") dfills = $(i - 1)
		if ($i == "prefetched_frac") pfrac = $(i - 1)
		if ($i == "hitrate") hrate = $(i - 1)
	}
	if (ns == "") next
	if (out != "") out = out ",\n"
	entry = sprintf("    \"%s\": {\"ns_op\": %s", name, ns)
	if (popens != "") entry = entry sprintf(", \"pfsopens_op\": %s", popens)
	if (pbytes != "") entry = entry sprintf(", \"pfsbytes_op\": %s", pbytes)
	if (dfills != "") entry = entry sprintf(", \"demandfills_op\": %s", dfills)
	if (pfrac != "") entry = entry sprintf(", \"prefetched_frac\": %s", pfrac)
	if (hrate != "") entry = entry sprintf(", \"hitrate\": %s", hrate)
	out = out entry "}"
}
END { print out }
' "$TMP" > "$TMP.json"

cat > "$OUT9" <<EOF
{
  "issue": 9,
  "description": "Clairvoyant epoch-aware prefetching: the epoch oracle's plan drives the prefetch pump ahead of the read frontier, and the Belady policy evicts by next-access distance. horizon0 installs no plan (the demand-only cold baseline); at horizon >= 64 the pump hides the PFS pass, so the stable cross-machine signals are demandfills_op (256 -> ~0), prefetched_frac (~1) and hitrate (~1) — cold pfsopens_op stays 256 at every horizon because a cold epoch copies each byte exactly once regardless of who schedules it. BenchmarkColdEpoch64 is carried from ISSUE 5 against its pre-PR number to record the fill-path rework (one shared O_RDWR descriptor + in-kernel copy_file_range). Wall-clock cold/warm ratios are machine-bound: on a single-core runner fills cannot overlap demand reads, so cold floors at warm + irreducible copy time (see EXPERIMENTS.md).",
  "benchtime": "20x",
  "baseline": {
    "BenchmarkColdEpoch64": {"ns_op": 21280289, "pfsopens_op": 64, "pfsbytes_op": 4194304}
  },
  "after": {
$(cat "$TMP.json")
  }
}
EOF
rm -f "$TMP.json"

echo "bench: wrote $OUT9" >&2

# --- ISSUE 10: zero-copy warm serves ----------------------------------

: > "$TMP"
echo '--- zero-copy benchmarks' >&2
go test -run '^$' -bench 'WarmRead64K|WarmRead1M' \
	-benchtime 2000x ./internal/core | tee -a "$TMP" >&2

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; mbs = ""; sends = ""; falls = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "MB/s") mbs = $(i - 1)
		if ($i == "zcsends/op") sends = $(i - 1)
		if ($i == "zcfallbacks/op") falls = $(i - 1)
	}
	if (ns == "") next
	if (out != "") out = out ",\n"
	entry = sprintf("    \"%s\": {\"ns_op\": %s", name, ns)
	if (mbs != "") entry = entry sprintf(", \"mb_s\": %s", mbs)
	if (sends != "") entry = entry sprintf(", \"zcsends_op\": %s", sends)
	if (falls != "") entry = entry sprintf(", \"zcfallbacks_op\": %s", falls)
	out = out entry "}"
}
END { print out }
' "$TMP" > "$TMP.json"

cat > "$OUT10" <<EOF
{
  "issue": 10,
  "description": "Zero-copy kernel data plane: warm whole-file reads over real TCP (open + one full-payload ranged read + close per op) with ServerConfig.ZeroCopy armed and disarmed. The zerocopy_true rows serve cache-fd -> socket through sendfile(2) behind an fd lease; zerocopy_false is the pooled pread+writev control and doubles as the pre-PR baseline (the path is unchanged from before the PR). Stable cross-machine signals: zcsends_op ~1 armed on Linux with zcfallbacks_op 0 (every warm serve left the kernel without a userspace payload copy; alloc_test.go separately pins 0 payload allocs/op), both 0 disarmed. mb_s is machine-bound: loopback has no NIC DMA, so sendfile saves CPU (the skipped user-space copy), not loopback wall-clock — on this runner armed and disarmed land within run-to-run variance of each other.",
  "benchtime": "2000x",
  "baseline": {
    "BenchmarkWarmRead64K/zerocopy_false": {"ns_op": 55743, "mb_s": 1175.68, "zcsends_op": 0, "zcfallbacks_op": 0},
    "BenchmarkWarmRead1M/zerocopy_false": {"ns_op": 623008, "mb_s": 1683.09, "zcsends_op": 0, "zcfallbacks_op": 0}
  },
  "after": {
$(cat "$TMP.json")
  }
}
EOF
rm -f "$TMP.json"

echo "bench: wrote $OUT10" >&2
