#!/bin/sh
# check.sh — the full verification gate: build, vet, format, hvaclint,
# then the test suite under the race detector. CI runs exactly this; run
# it locally before sending a change.
set -eu

cd "$(dirname "$0")/.."

echo '--- go build ./...'
go build ./...

echo '--- go vet ./...'
go vet ./...

echo '--- gofmt -l .'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# -stats prints per-analyzer finding counts and wall time, so a gate
# failure names the rule that tripped it and a slow gate names the
# analyzer that costs it.
echo '--- go run ./cmd/hvaclint -stats ./...'
go run ./cmd/hvaclint -stats ./...

echo '--- go test -race ./...'
go test -race ./...

echo '--- chaos tier (go test -race -shuffle=on)'
go test -race -shuffle=on -run Chaos ./internal/core
go test -race -shuffle=on ./internal/faultnet

echo 'check: OK'
