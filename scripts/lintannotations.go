// Command lintannotations converts hvaclint -format json output into
// GitHub Actions workflow commands, so lint findings surface as inline
// annotations on pull requests:
//
//	go run ./cmd/hvaclint -format json ./... > lint.json || true
//	go run ./scripts/lintannotations.go lint.json
//
// Unsuppressed findings become ::error annotations; suppressed ones
// become ::notice annotations (visible for auditing, never gating). The
// exit status is always 0 — gating stays with hvaclint itself in
// check.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type finding struct {
	Rule string `json:"rule"`
	Pos  struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
	} `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// escape applies GitHub's workflow-command data escaping.
func escape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: lintannotations <lint.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintannotations:", err)
		os.Exit(2)
	}
	var findings []finding
	if err := json.Unmarshal(data, &findings); err != nil {
		fmt.Fprintln(os.Stderr, "lintannotations:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		level := "error"
		if f.Suppressed {
			level = "notice"
		}
		fmt.Printf("::%s file=%s,line=%d,col=%d,title=hvaclint %s::%s\n",
			level, escape(f.Pos.File), f.Pos.Line, f.Pos.Col, escape(f.Rule), escape(f.Message))
	}
}
