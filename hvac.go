// Package hvac is a Go implementation and simulation study of HVAC
// ("High-Velocity AI Cache"), the distributed read-only cache layer for
// large-scale deep-learning training described in:
//
//	Khan et al., "HVAC: Removing I/O Bottleneck for Large-Scale Deep
//	Learning Applications", IEEE CLUSTER 2022 (ORNL).
//
// The package exposes two halves:
//
//   - A real client/server cache you can run on any machine or cluster:
//     StartServer launches an HVAC server that caches files from a
//     PFS-visible directory onto fast local storage; NewClient gives
//     applications a transparent read path that hashes each file to its
//     home server (no metadata service), with PFS fallback on failure.
//     This is the paper's system with the LD_PRELOAD interposition
//     replaced by a Go interception API (see DESIGN.md).
//
//   - A simulated Summit substrate (NewSimulatedCluster and the
//     Experiments registry) that regenerates every table and figure of
//     the paper's evaluation: GPFS vs XFS-on-NVMe vs HVAC(i×1) at up to
//     4,096 nodes.
//
// Quick start (real mode):
//
//	srv, _ := hvac.StartServer(hvac.ServerConfig{
//		ListenAddr: "127.0.0.1:0",
//		PFSDir:     "/pfs/dataset",
//		CacheDir:   "/nvme/hvac-cache",
//	})
//	defer srv.Close()
//	cli, _ := hvac.NewClient(hvac.ClientConfig{
//		Servers:    []string{srv.Addr()},
//		DatasetDir: "/pfs/dataset",
//	})
//	defer cli.Close()
//	data, _ := cli.ReadAll("/pfs/dataset/sample-000001.rec")
package hvac

import (
	"hvac/internal/cachestore"
	"hvac/internal/core"
	"hvac/internal/experiments"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/transport"
	"hvac/internal/vfs"
)

// Real-mode client/server API (the paper's §III system).
type (
	// ServerConfig configures an HVAC server instance.
	ServerConfig = core.ServerConfig
	// Server is a running HVAC cache server.
	Server = core.Server
	// ServerStats are server-side counters.
	ServerStats = core.ServerStats
	// ClientConfig configures an HVAC client.
	ClientConfig = core.ClientConfig
	// Client is the interception layer applications read through.
	Client = core.Client
	// ClientStats are client-side counters.
	ClientStats = core.ClientStats
	// File is a read-only handle served by HVAC (or PFS fallback).
	File = core.File
	// Transport is one client->server link; ClientConfig.DialTransport
	// lets callers decorate it (the fault-injection harness does).
	Transport = transport.Transport
)

// StartServer launches an HVAC server instance (one data-mover per
// configured worker, two-level demand/prefetch fetch queue, node-local
// cache store; cold reads are served from the in-flight fill).
func StartServer(cfg ServerConfig) (*Server, error) { return core.StartServer(cfg) }

// NewClient builds the client-side interception layer over a job's server
// allocation.
func NewClient(cfg ClientConfig) (*Client, error) { return core.NewClient(cfg) }

// Placement is the hash that homes a file on a server (§III-E).
type Placement = place.Policy

// ModHashPlacement returns the paper's placement: a path hash modulo the
// allocation.
func ModHashPlacement() Placement { return place.ModHash{} }

// RendezvousPlacement returns highest-random-weight placement (ablation).
func RendezvousPlacement() Placement { return place.Rendezvous{} }

// RingPlacement returns consistent-hash-ring placement (ablation).
func RingPlacement() Placement { return &place.Ring{} }

// EvictionPolicy decides cache victims (§III-G).
type EvictionPolicy = cachestore.Policy

// RandomEviction returns the paper's random eviction policy.
func RandomEviction(seed uint64) EvictionPolicy { return cachestore.NewRandom(seed) }

// LRUEviction returns least-recently-used eviction.
func LRUEviction() EvictionPolicy { return cachestore.NewLRU() }

// FIFOEviction returns insertion-order eviction.
func FIFOEviction() EvictionPolicy { return cachestore.NewFIFO() }

// ClockEviction returns second-chance (CLOCK) eviction.
func ClockEviction() EvictionPolicy { return cachestore.NewClock() }

// ClairvoyantEviction returns next-access-distance (Belady) eviction
// scored from installed epoch plans (Client.InstallPlan / OpPlan), with
// a segmented-LRU ghost-list fallback for keys no plan covers. Pass the
// same value to ServerConfig.Policy so the server can feed it plans.
func ClairvoyantEviction() *cachestore.Clairvoyant { return cachestore.NewClairvoyant() }

// AccessOracle is the epoch access order the clairvoyant planner is
// driven by; train.NewOracle values satisfy it.
type AccessOracle = core.AccessOracle

// NewAccessOracle derives epoch e's access oracle for a seeded training
// run over n samples — the exact shuffle the train package's loop
// consumes, computable by every rank without coordination.
func NewAccessOracle(seed uint64, epoch, n int) AccessOracle {
	return train.NewOracle(seed, epoch, n)
}

// PlanOrder enumerates an epoch's global access order from an oracle:
// the path read at every step.
func PlanOrder(o AccessOracle, pathAt func(int) string) []string {
	return core.PlanOrder(o, pathAt)
}

// Simulation API: the Summit substrate used by the evaluation.
type (
	// SimEngine is the discrete-event engine simulated clusters run on.
	SimEngine = sim.Engine
	// SimProc is a simulated process; blocking calls consume virtual time.
	SimProc = sim.Proc
	// SimCluster is a simulated Summit allocation (Table I nodes,
	// Alpine GPFS, EDR fabric).
	SimCluster = summit.Cluster
	// SimHVACOptions configures a simulated HVAC deployment.
	SimHVACOptions = summit.HVACOptions
	// SimHVACJob is a running simulated HVAC deployment.
	SimHVACJob = summit.HVACJob
	// Namespace is a simulated file population (path -> size).
	Namespace = vfs.Namespace
)

// NewSimEngine returns a fresh deterministic simulation engine.
func NewSimEngine() *SimEngine { return sim.NewEngine() }

// NewNamespace returns an empty simulated file namespace.
func NewNamespace() *Namespace { return vfs.NewNamespace() }

// NewSimulatedCluster allocates a simulated Summit cluster of the given
// node count whose GPFS holds ns.
func NewSimulatedCluster(eng *SimEngine, nodes int, ns *Namespace) *SimCluster {
	return summit.NewCluster(eng, nodes, ns)
}

// Experiment reproduces one table or figure of the paper.
type Experiment = experiments.Experiment

// ExperimentOptions controls experiment scale and seeding.
type ExperimentOptions = experiments.Options

// Experiments returns the full registry of reproducible artefacts
// (Table I, Figs. 3-4 and 8-15, plus ablations).
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment by registry id (e.g. "fig8").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
